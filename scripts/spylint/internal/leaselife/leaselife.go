// Package leaselife machine-checks the serve fleet's exactly-once
// lease discipline (pkg/spybox/service): a job claimed from the store
// must be disposed of on every control-flow path, and the disposal
// must respect lease loss.
//
// The rules, enforced by abstract interpretation over the framework
// CFG:
//
//   - every Store.Claim result must reach a terminal Put (a Put
//     preceded by a `.State = JobDone/JobFailed/JobCancelled`
//     assignment on the same path), a Release, or be handed to
//     another function in the package along with the claimed Record
//     (delegation — the callee is then analyzed with the claim open);
//   - when the function runs a lease-renewal goroutine (a `go` literal
//     that calls Renew and sets a flag on failure), a terminal Put is
//     only legal on paths that checked the flag first — writing a
//     terminal record after the lease was reclaimed clobbers a peer's
//     run;
//   - a Claim while the previous claim is still open (a claim loop
//     without per-iteration disposition) is flagged at the Claim;
//   - Renew belongs to the claiming goroutine's run loop: a Renew in
//     a function that neither claims nor receives a claimed Record is
//     flagged.
//
// Leaks are reported at the `return` that abandons the claim, so an
// exemption (`//spylint:allow leaselife <reason>` — e.g. the record
// was deleted mid-run and the lease died with it) sits on the exact
// early exit it justifies. A claim whose success flag was never
// observed true on the path (the idle-poll branch of a claim loop) is
// not a leak. Test files are exempt; goroutine bodies other than the
// renewal pattern are not analyzed.
package leaselife

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spylint/internal/framework"
)

// targetPkg scopes the analyzer: lease discipline is the service
// layer's contract.
const targetPkg = "spybox/pkg/spybox/service"

var Analyzer = &framework.Analyzer{
	Name: "leaselife",
	Doc: "every Store.Claim must reach a terminal Put, a Release, or a lease-loss guard " +
		"on all control-flow paths (the vet-time twin of the fleet's exactly-once tests)",
	Run: run,
}

type claimState int8

const (
	cNone     claimState = iota // no claim on this path
	cMaybe                      // claimed, success flag not yet observed
	cLive                       // claim confirmed held
	cDisposed                   // released, terminally put, delegated, or lease lost
)

// state is one abstract path state. retPos remembers the return
// statement the path exited through, so leaks point at the exit.
type state struct {
	claim        claimState
	lostChecked  bool
	termAssigned bool
	retPos       token.Pos
}

func (s state) Key() string {
	return fmt.Sprintf("%d%t%t%d", s.claim, s.lostChecked, s.termAssigned, s.retPos)
}

func run(pass *framework.Pass) {
	if pass.PkgPath != targetPkg {
		return
	}
	funcs := map[*types.Func]*ast.FuncDecl{}
	var order []*types.Func
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				funcs[obj] = fd
				order = append(order, obj)
			}
		}
	}

	a := &analysis{pass: pass, funcs: funcs, delegated: map[*types.Func]int{}, reported: map[token.Pos]bool{}}

	// Round 1: functions that Claim directly. Delegations they hand
	// out seed later rounds until the set closes.
	analyzed := map[*types.Func]bool{}
	for _, fn := range order {
		if hasClaimCall(pass, funcs[fn]) {
			a.checkFunc(fn, -1)
			analyzed[fn] = true
		}
	}
	for {
		next := []*types.Func{}
		for fn := range a.delegated {
			if !analyzed[fn] {
				next = append(next, fn)
			}
		}
		if len(next) == 0 {
			break
		}
		for _, fn := range next {
			analyzed[fn] = true
			if fd := funcs[fn]; fd != nil {
				a.checkFunc(fn, a.delegated[fn])
			}
		}
	}

	// Renew placement: only claimers and their delegates may renew.
	for _, fn := range order {
		fd := funcs[fn]
		if analyzed[fn] {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isStoreMethodCall(pass, call, "Renew") {
				pass.Reportf(call.Pos(),
					"Renew outside the claiming goroutine: only the function that claimed the job (or was handed its Record) may renew the lease")
			}
			return true
		})
	}
}

type analysis struct {
	pass      *framework.Pass
	funcs     map[*types.Func]*ast.FuncDecl
	delegated map[*types.Func]int // claim-delegation targets -> Record param index
	reported  map[token.Pos]bool
}

// checker interprets one function. paramIdx >= 0 means the function
// was delegated an already-open claim via that parameter.
type checker struct {
	a        *analysis
	pass     *framework.Pass
	fn       *types.Func
	fd       *ast.FuncDecl
	claimPos token.Pos
	okVar    types.Object // claim success flag, nil when unobservable
	recVar   types.Object // claimed Record variable, nil when unknown
	lostFlag types.Object // renewal-failure flag, nil when no renewal goroutine
}

func (a *analysis) checkFunc(fn *types.Func, paramIdx int) {
	fd := a.funcs[fn]
	c := &checker{a: a, pass: a.pass, fn: fn, fd: fd, claimPos: fd.Name.Pos()}
	c.lostFlag = findLostFlag(a.pass, fd)
	init := state{}
	if paramIdx >= 0 {
		init.claim = cLive
		if c.recVar = paramObj(a.pass, fd, paramIdx); c.recVar == nil {
			return
		}
		c.claimPos = c.recVar.Pos()
	}
	framework.Interpret(framework.BuildCFG(fd.Body, a.pass.Info), init, c)
}

// ---- FlowSemantics ----

func (c *checker) Transfer(fs framework.FlowState, n ast.Node) framework.FlowState {
	s := fs.(state)
	if ret, ok := n.(*ast.ReturnStmt); ok {
		s.retPos = ret.Pos()
		return s
	}
	if as, ok := n.(*ast.AssignStmt); ok {
		if t, isTerm := terminalStateAssign(as); t {
			s.termAssigned = isTerm
		}
		if len(as.Rhs) == 1 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isStoreMethodCall(c.pass, call, "Claim") {
				s = c.claimTransfer(s, as, call)
			}
		}
	}
	// Relevant calls anywhere in the statement (conditions and inits
	// arrive as their own nodes); goroutine bodies are the renewal
	// loop's business, not this path's.
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isStoreMethodCall(c.pass, call, "Claim"):
			if enclosingSingleAssign(n, call) == nil {
				s = c.claimTransfer(s, nil, call)
			}
		case isStoreMethodCall(c.pass, call, "Release"):
			if s.claim != cNone {
				s.claim = cDisposed
			}
		case isStoreMethodCall(c.pass, call, "Put"):
			if s.termAssigned {
				if c.lostFlag != nil && !s.lostChecked && (s.claim == cLive || s.claim == cMaybe) {
					c.reportOnce(call.Pos(),
						"terminal Put without checking the lease-renewal failure flag first: if the lease was reclaimed, this write clobbers the new owner's record")
				}
				if s.claim != cNone {
					s.claim = cDisposed
				}
			}
		default:
			s = c.delegationTransfer(s, call)
		}
		return true
	})
	return s
}

// claimTransfer folds a Store.Claim call into the state and binds the
// success flag and Record variable when the result is assigned.
func (c *checker) claimTransfer(s state, as *ast.AssignStmt, call *ast.CallExpr) state {
	if s.claim == cLive {
		c.reportOnce(call.Pos(),
			"Claim in a loop without a per-iteration disposition: the previous claim is still open here")
	}
	c.claimPos = call.Pos()
	c.okVar, c.recVar = nil, nil
	s.claim = cLive // blank/ignored success flag: assume claimed
	if as != nil && len(as.Lhs) >= 2 {
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			c.recVar = lhsObj(c.pass, id)
		}
		if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
			c.okVar = lhsObj(c.pass, id)
			s.claim = cMaybe // refined to cLive/cNone at branches on okVar
		}
	}
	return s
}

// delegationTransfer treats passing the claimed Record to another
// function in the package as handing over the obligation.
func (c *checker) delegationTransfer(s state, call *ast.CallExpr) state {
	if c.recVar == nil || (s.claim != cLive && s.claim != cMaybe) {
		return s
	}
	callee := staticCallee(c.pass, call)
	if callee == nil || callee.Pkg() == nil ||
		framework.NormalizePkgPath(callee.Pkg().Path()) != c.pass.PkgPath {
		return s
	}
	for i, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok && c.pass.Info.Uses[id] == c.recVar {
			s.claim = cDisposed
			if _, seen := c.a.delegated[callee]; !seen {
				c.a.delegated[callee] = i
			}
			return s
		}
	}
	return s
}

func (c *checker) Branch(fs framework.FlowState, cond ast.Expr, taken bool) (framework.FlowState, bool) {
	s := fs.(state)
	framework.ImpliedTruths(cond, taken, func(atom ast.Expr, val bool) {
		if c.okVar != nil && exprIsObj(c.pass, atom, c.okVar) {
			if s.claim == cMaybe {
				if val {
					s.claim = cLive
				} else {
					s.claim = cNone
				}
			}
			return
		}
		if c.lostFlag != nil && exprReadsFlag(c.pass, atom, c.lostFlag) {
			s.lostChecked = true
			if val && (s.claim == cLive || s.claim == cMaybe) {
				// Lease gone: the new owner holds the obligation.
				s.claim = cDisposed
			}
		}
	})
	return s, true
}

func (c *checker) AtExit(fs framework.FlowState) {
	s := fs.(state)
	if s.claim != cLive {
		return
	}
	pos := s.retPos
	if pos == token.NoPos {
		pos = c.claimPos
	}
	c.reportOnce(pos,
		"claimed job leaks on this path: no terminal Put, Release, or lease-loss guard before the function returns (lease held until TTL expiry)")
}

func (c *checker) reportOnce(pos token.Pos, msg string) {
	if !c.a.reported[pos] {
		c.a.reported[pos] = true
		c.pass.Reportf(pos, "%s", msg)
	}
}

// ---- syntactic helpers ----

// hasClaimCall reports whether fd calls Store.Claim outside function
// literals.
func hasClaimCall(pass *framework.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isStoreMethodCall(pass, call, "Claim") {
			found = true
		}
		return !found
	})
	return found
}

// isStoreMethodCall matches a method call named name with the store
// interface's shape: Claim additionally requires (Record, bool, error)
// results so unrelated Claims elsewhere don't bind.
func isStoreMethodCall(pass *framework.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if name == "Claim" {
		res := sig.Results()
		if res.Len() != 3 {
			return false
		}
		b, ok := res.At(1).Type().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Bool
	}
	return true
}

// terminalStateAssign reports whether as assigns a job state to a
// `.State` field, and whether that state is terminal
// (JobDone/JobFailed/JobCancelled).
func terminalStateAssign(as *ast.AssignStmt) (isStateAssign, terminal bool) {
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "State" || i >= len(as.Rhs) {
			continue
		}
		name := ""
		switch r := as.Rhs[i].(type) {
		case *ast.Ident:
			name = r.Name
		case *ast.SelectorExpr:
			name = r.Sel.Name
		}
		switch name {
		case "JobDone", "JobFailed", "JobCancelled":
			return true, true
		default:
			return true, false
		}
	}
	return false, false
}

// findLostFlag locates the renewal-failure flag: inside a `go func()
// {...}` literal that calls Renew, the variable stored true when the
// renewal errors (`flag.Store(true)` or `flag = true`).
func findLostFlag(pass *framework.Pass, fd *ast.FuncDecl) types.Object {
	var flag types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if flag != nil {
			return false
		}
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		renews := false
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && isStoreMethodCall(pass, call, "Renew") {
				renews = true
			}
			return true
		})
		if !renews {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if flag != nil {
				return false
			}
			switch m := m.(type) {
			case *ast.CallExpr:
				// flag.Store(true)
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Store" && len(m.Args) == 1 {
					if isTrue(m.Args[0]) {
						if id, ok := sel.X.(*ast.Ident); ok {
							flag = pass.Info.Uses[id]
						}
					}
				}
			case *ast.AssignStmt:
				// flag = true
				if len(m.Lhs) == 1 && len(m.Rhs) == 1 && isTrue(m.Rhs[0]) {
					if id, ok := m.Lhs[0].(*ast.Ident); ok {
						flag = lhsObj(pass, id)
					}
				}
			}
			return true
		})
		return true
	})
	return flag
}

// exprReadsFlag matches `flag.Load()` and plain `flag` atoms.
func exprReadsFlag(pass *framework.Pass, atom ast.Expr, flag types.Object) bool {
	switch e := atom.(type) {
	case *ast.Ident:
		return pass.Info.Uses[e] == flag
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Load" {
			if id, ok := sel.X.(*ast.Ident); ok {
				return pass.Info.Uses[id] == flag
			}
		}
	}
	return false
}

func exprIsObj(pass *framework.Pass, atom ast.Expr, obj types.Object) bool {
	id, ok := atom.(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

// enclosingSingleAssign returns n when it is an AssignStmt whose sole
// RHS is call (the claim-binding form handled by claimTransfer).
func enclosingSingleAssign(n ast.Node, call *ast.CallExpr) *ast.AssignStmt {
	as, ok := n.(*ast.AssignStmt)
	if ok && len(as.Rhs) == 1 && as.Rhs[0] == call {
		return as
	}
	return nil
}

func staticCallee(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch f := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[f]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[f.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func lhsObj(pass *framework.Pass, id *ast.Ident) types.Object {
	if obj, ok := pass.Info.Defs[id]; ok && obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

func paramObj(pass *framework.Pass, fd *ast.FuncDecl, idx int) types.Object {
	i := 0
	for _, field := range fd.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			i++
			continue
		}
		for _, name := range names {
			if i == idx {
				return pass.Info.Defs[name]
			}
			i++
		}
	}
	return nil
}

func isTrue(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "true"
}
