// Package scratchalias enforces the probe-scratch lifetime contract:
// sim.Worker.ProbeLines / ProbeLinesHits return slices that alias
// worker-owned scratch storage, valid only until that worker's next
// probe call. Retaining such a slice — storing it in a struct field or
// package variable, appending it into a longer-lived slice, sending it
// on a channel, or returning it from a function not itself declared
// scratch-returning — silently corrupts earlier samples when the
// buffer is rewritten.
//
// Scratch-returning functions are identified by a seed list (the sim
// probe methods) plus the `//spylint:scratch` doc-comment directive on
// wrappers (e.g. cudart.Kernel.ProbeSet); the directive is exported as
// a package fact so the check follows wrappers across package
// boundaries. A clone (`append([]T(nil), s...)`, `copy`, explicit
// loop) launders the taint; anything else needs
// `//spylint:allow scratchalias <reason>`.
package scratchalias

import (
	"go/ast"
	"go/types"
	"strings"

	"spylint/internal/framework"
)

// seeds are the root scratch-returning functions, identified by the
// same ID grammar the facts use: "(pkgpath.Type).Method" or
// "pkgpath.Func".
var seeds = map[string]bool{
	"(spybox/internal/sim.Worker).ProbeLines":     true,
	"(spybox/internal/sim.Worker).ProbeLinesHits": true,
}

var Analyzer = &framework.Analyzer{
	Name: "scratchalias",
	Doc: "probe-scratch return values (ProbeLines and //spylint:scratch functions) must not " +
		"outlive the next probe call: no stores to fields/globals, no append into long-lived " +
		"slices, no un-annotated returns",
	Run:          run,
	ExportsFacts: true,
}

func run(pass *framework.Pass) {
	// First pass: publish facts for every //spylint:scratch function in
	// this package (plus re-seed, so sim's own methods are facts too).
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			id := declID(pass, fd)
			if id == "" {
				continue
			}
			if framework.HasScratchDirective(fd) || seeds[id] {
				pass.ExportFact(id)
			}
		}
	}

	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
}

// isScratchFunc reports whether the called function is known to return
// receiver-owned scratch (seed, local/imported fact).
func isScratchFunc(pass *framework.Pass, fn *types.Func) bool {
	id := funcID(fn)
	return id != "" && (seeds[id] || pass.HasFact(id))
}

// funcID renders a *types.Func as a stable cross-package identifier.
func funcID(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return "(" + framework.NormalizePkgPath(named.Obj().Pkg().Path()) + "." +
			named.Obj().Name() + ")." + fn.Name()
	}
	if fn.Pkg() == nil {
		return ""
	}
	return framework.NormalizePkgPath(fn.Pkg().Path()) + "." + fn.Name()
}

// declID renders a declared function as the same identifier funcID
// produces for calls to it.
func declID(pass *framework.Pass, fd *ast.FuncDecl) string {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return ""
	}
	return funcID(obj)
}

// checker tracks, within one function body, which local variables
// currently alias probe scratch.
type checker struct {
	pass    *framework.Pass
	scratch bool // the enclosing function is itself scratch-returning
	tainted map[types.Object]bool
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	c := &checker{
		pass:    pass,
		scratch: framework.HasScratchDirective(fd) || seeds[declID(pass, fd)],
		tainted: map[types.Object]bool{},
	}
	// Seed taint to a fixpoint: `a := w.ProbeLines(...)`, then `b := a`,
	// possibly declared out of source order inside nested blocks.
	for {
		before := len(c.tainted)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				c.propagate(as)
			}
			return true
		})
		if len(c.tainted) == before {
			break
		}
	}
	c.report(fd)
}

// propagate taints LHS locals whose RHS aliases scratch.
func (c *checker) propagate(as *ast.AssignStmt) {
	taintLHS := func(lhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := c.pass.Info.Defs[id]
		if obj == nil {
			obj = c.pass.Info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && !isPackageLevel(v) && isRefType(v.Type()) {
			c.tainted[v] = true
		}
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			if c.aliasesScratch(rhs) {
				taintLHS(as.Lhs[i])
			}
		}
		return
	}
	// Tuple form: a, b := call(). Taint every reference-typed LHS when
	// the call is scratch-returning.
	if len(as.Rhs) == 1 && c.aliasesScratch(as.Rhs[0]) {
		for _, lhs := range as.Lhs {
			taintLHS(lhs)
		}
	}
}

// aliasesScratch reports whether evaluating e yields a value aliasing
// probe scratch: a scratch call, a tainted variable, a slice/paren of
// either, or an append whose base (arg 0) aliases scratch. An append
// onto a fresh base (`append([]T(nil), s...)`) copies and is clean.
func (c *checker) aliasesScratch(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.aliasesScratch(e.X)
	case *ast.SliceExpr:
		return c.aliasesScratch(e.X)
	case *ast.Ident:
		obj := c.pass.Info.Uses[e]
		return obj != nil && c.tainted[obj]
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				return c.aliasesScratch(e.Args[0])
			}
		}
		if fn := calleeFunc(c.pass, e); fn != nil {
			return isScratchFunc(c.pass, fn)
		}
	}
	return false
}

// calleeFunc resolves a call's static callee, or nil for builtins,
// conversions, and indirect calls.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// report walks the body flagging every way a scratch alias can outlive
// the probe window.
func (c *checker) report(fd *ast.FuncDecl) {
	pass := c.pass
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.checkStores(n)
		case *ast.ReturnStmt:
			if c.scratch {
				break // declared scratch-returning: aliasing is the contract
			}
			for _, res := range n.Results {
				if c.aliasesScratch(res) {
					pass.Reportf(res.Pos(),
						"returning probe scratch extends its lifetime past the caller's next probe; copy it (append([]T(nil), s...)) or declare this function //spylint:scratch")
				}
			}
		case *ast.SendStmt:
			if c.aliasesScratch(n.Value) {
				pass.Reportf(n.Value.Pos(),
					"sending probe scratch on a channel lets it outlive the next probe call; send a copy")
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if c.aliasesScratch(v) {
					pass.Reportf(v.Pos(),
						"probe scratch captured in a composite literal may outlive the next probe call; store a copy")
				}
			}
		case *ast.CallExpr:
			c.checkAppendArgs(n)
		}
		return true
	})
}

// checkStores flags assignments that park a scratch alias somewhere
// longer-lived than a local: a struct field, a package-level variable,
// or through a pointer / into an existing slice or map.
func (c *checker) checkStores(as *ast.AssignStmt) {
	rhsAliases := func(i int) bool {
		if len(as.Lhs) == len(as.Rhs) {
			return c.aliasesScratch(as.Rhs[i])
		}
		return len(as.Rhs) == 1 && c.aliasesScratch(as.Rhs[0])
	}
	for i, lhs := range as.Lhs {
		if !rhsAliases(i) {
			continue
		}
		switch l := lhs.(type) {
		case *ast.SelectorExpr:
			if sel, ok := c.pass.Info.Selections[l]; ok && sel.Kind() == types.FieldVal {
				c.pass.Reportf(l.Pos(),
					"storing probe scratch in field %s outlives the next probe call; store a copy (append([]T(nil), s...))", l.Sel.Name)
			} else if obj, ok := c.pass.Info.Uses[l.Sel].(*types.Var); ok && isPackageLevel(obj) {
				c.pass.Reportf(l.Pos(),
					"storing probe scratch in package variable %s outlives the next probe call; store a copy", l.Sel.Name)
			}
		case *ast.Ident:
			if obj, ok := objOf(c.pass, l).(*types.Var); ok && isPackageLevel(obj) {
				c.pass.Reportf(l.Pos(),
					"storing probe scratch in package variable %s outlives the next probe call; store a copy", l.Name)
			}
		case *ast.IndexExpr:
			c.pass.Reportf(l.Pos(),
				"storing probe scratch into an existing slice or map outlives the next probe call; store a copy")
		case *ast.StarExpr:
			c.pass.Reportf(l.Pos(),
				"storing probe scratch through a pointer outlives the next probe call; store a copy")
		}
	}
}

// checkAppendArgs flags `append(dst, scratch)` where scratch rides
// along as an *element* (dst is a [][]T): the slice header is retained,
// not its contents. The spread form `append(dst, scratch...)` copies
// elements and is clean, as is using scratch as the base (handled by
// aliasesScratch on the enclosing assignment).
func (c *checker) checkAppendArgs(call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return
	}
	if _, isBuiltin := c.pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if call.Ellipsis.IsValid() {
		return // append(dst, s...) copies the elements
	}
	for _, arg := range call.Args[1:] {
		if c.aliasesScratch(arg) {
			c.pass.Reportf(arg.Pos(),
				"appending a probe-scratch slice as an element retains its header past the next probe call; append a copy")
		}
	}
}

func objOf(pass *framework.Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isRefType reports whether t can alias backing storage: slices, maps,
// and pointers. Scalars copied out of scratch are always safe.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	}
	return false
}
