module spylint

go 1.22
