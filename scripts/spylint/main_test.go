package main

import (
	"testing"

	"spylint/internal/analysistest"
)

// Every fixture runs under the full analyzer set, exactly like a real
// vet invocation: a fixture must be clean for the analyzers it is not
// exercising, which also guards against cross-analyzer false positives.

func TestResetComplete(t *testing.T) {
	analysistest.Run(t, "testdata/resetcomplete", analyzers)
}

func TestDetRand(t *testing.T) {
	analysistest.Run(t, "testdata/detrand", analyzers)
}

func TestScratchAlias(t *testing.T) {
	analysistest.Run(t, "testdata/scratchalias", analyzers)
}

func TestDroppedErr(t *testing.T) {
	analysistest.Run(t, "testdata/droppederr", analyzers)
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/hotalloc", analyzers)
}

func TestLeaseLife(t *testing.T) {
	analysistest.Run(t, "testdata/leaselife", analyzers)
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata/ctxflow", analyzers)
}
