// Spylint is this repository's static-analysis vettool. It machine-
// checks the invariants the simulator's correctness rests on:
//
//	resetcomplete  every pooled/resettable type's Reset covers every
//	               struct field (pooling stays observably invisible)
//	detrand        deterministic packages take no randomness from the
//	               environment: no wall clock, no math/rand, no map
//	               iteration, no package-level mutable state
//	scratchalias   probe-scratch return values (ProbeLines and friends)
//	               are never retained past their lifetime window
//	droppederr     experiment and report/render code never silently
//	               discards an error
//	hotalloc       //spylint:hotpath functions and everything they call
//	               intra-module are allocation-free (vet-time twin of
//	               the 0 allocs/op benchmark gates)
//	leaselife      every service Store.Claim reaches a terminal Put,
//	               Release, or lease-loss guard on all paths
//	ctxflow        exported blocking library APIs accept and propagate
//	               context.Context; Background()/TODO() stay in main
//
// Run it through the build system:
//
//	go build -o /tmp/spylint ./scripts/spylint   (from this module)
//	go vet -vettool=/tmp/spylint ./...           (from the target module)
//
// or standalone over a module: `spylint ./...`. Findings are
// suppressed by `//spylint:allow <analyzer> <reason>` on the offending
// line or the line above; see each analyzer's Doc for details.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"spylint/internal/ctxflow"
	"spylint/internal/detrand"
	"spylint/internal/droppederr"
	"spylint/internal/framework"
	"spylint/internal/hotalloc"
	"spylint/internal/leaselife"
	"spylint/internal/resetcomplete"
	"spylint/internal/scratchalias"
)

var analyzers = []*framework.Analyzer{
	resetcomplete.Analyzer,
	detrand.Analyzer,
	scratchalias.Analyzer,
	droppederr.Analyzer,
	hotalloc.Analyzer,
	leaselife.Analyzer,
	ctxflow.Analyzer,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("spylint: ")
	flag.Var(versionFlag{}, "V", "print version and exit (-V=full, go vet protocol)")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (go vet protocol)")
	detpkgs := flag.Bool("det-packages", false, "print the deterministic package list, one per line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `spylint checks the spybox simulator's determinism, reset, scratch-aliasing,
and error-handling invariants.

usage:
	spylint unit.cfg        # one compilation unit (invoked by go vet -vettool)
	spylint ./...           # standalone, over packages of the current module
	spylint -det-packages   # list the packages detrand treats as deterministic

analyzers: %s
`, analyzerNames())
	}
	flag.Parse()

	if *printflags {
		printFlags()
		return
	}
	if *detpkgs {
		for _, p := range detrand.Packages {
			fmt.Println(p)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		framework.RunVetUnit(args[0], analyzers) // exits
		return
	}
	diags, err := framework.RunStandalone("", args, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func analyzerNames() string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// printFlags describes our flags as JSON, the contract `go vet` uses
// to learn which command-line flags it may forward to the tool.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full protocol: `go vet` hashes the
// reported line into its action cache key, so the content hash of the
// executable must appear — editing an analyzer then invalidates every
// cached vet result.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (only -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}
