// Fixture for the leaselife analyzer: every Store.Claim must reach a
// terminal Put, a Release, or a lease-loss guard on all control-flow
// paths. The types mirror the real service package's shapes — Claim's
// (Record, bool, error) signature is what binds the checker.
package service

import (
	"sync/atomic"
	"time"
)

type JobID string

type State int

const (
	JobQueued State = iota
	JobRunning
	JobDone
	JobFailed
	JobCancelled
)

type Status struct {
	ID    JobID
	State State
}

type Record struct {
	Status Status
}

// Store is the fixture stand-in for the real job store.
type Store struct{}

func (s *Store) Claim(owner string, ttl time.Duration) (Record, bool, error) {
	return Record{}, false, nil
}
func (s *Store) Put(rec Record) error                                  { return nil }
func (s *Store) Release(id JobID, owner string) error                  { return nil }
func (s *Store) Renew(id JobID, owner string, ttl time.Duration) error { return nil }

func work() {}

// runOne disposes on every path: the error/idle return leaves the
// claim unconfirmed (cMaybe, not a leak), the success path terminates.
func runOne(st *Store) {
	rec, ok, err := st.Claim("me", time.Second)
	if err != nil || !ok {
		return
	}
	rec.Status.State = JobDone
	_ = st.Put(rec)
}

// leaky abandons a confirmed claim on one of its returns.
func leaky(st *Store) {
	rec, ok, _ := st.Claim("me", time.Second)
	if !ok {
		return
	}
	if rec.Status.ID == "skip" {
		return // want `claimed job leaks on this path: no terminal Put, Release, or lease-loss guard`
	}
	rec.Status.State = JobDone
	_ = st.Put(rec)
}

// releases returns the claim instead of running it: clean.
func releases(st *Store) {
	_, ok, _ := st.Claim("me", time.Second)
	if !ok {
		return
	}
	_ = st.Release("j", "me")
}

// allowed documents a justified early exit per-path: the exemption
// sits on the exact return it excuses, and the other paths are still
// checked.
func allowed(st *Store) {
	rec, ok, _ := st.Claim("me", time.Second)
	if !ok {
		return
	}
	if rec.Status.State == JobDone {
		//spylint:allow leaselife fixture: terminal record observed, the lease died with it
		return
	}
	rec.Status.State = JobFailed
	_ = st.Put(rec)
}

// guarded runs the renewal-goroutine pattern correctly: the terminal
// Put happens only on paths that checked the failure flag.
func guarded(st *Store) {
	rec, ok, _ := st.Claim("me", time.Second)
	if !ok {
		return
	}
	var lost atomic.Bool
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.Renew(rec.Status.ID, "me", time.Second); err != nil {
				lost.Store(true)
				return
			}
		}
	}()
	work()
	close(stop)
	if lost.Load() {
		return // the new owner holds the obligation now
	}
	rec.Status.State = JobDone
	_ = st.Put(rec)
}

// unguarded writes its terminal record without consulting the flag.
func unguarded(st *Store) {
	rec, ok, _ := st.Claim("me", time.Second)
	if !ok {
		return
	}
	var lost atomic.Bool
	go func() {
		if err := st.Renew(rec.Status.ID, "me", time.Second); err != nil {
			lost.Store(true)
		}
	}()
	work()
	rec.Status.State = JobDone
	_ = st.Put(rec) // want `terminal Put without checking the lease-renewal failure flag first`
}

// worker is the canonical claim loop: each iteration disposes before
// the next Claim, so the loop is clean.
func worker(st *Store) {
	for {
		rec, ok, _ := st.Claim("me", time.Second)
		if !ok {
			return
		}
		rec.Status.State = JobDone
		_ = st.Put(rec)
	}
}

// loopClaims re-claims while the previous claim is still open.
func loopClaims(st *Store) {
	for {
		rec, ok, _ := st.Claim("me", time.Second) // want `Claim in a loop without a per-iteration disposition`
		if !ok {
			return
		}
		if rec.Status.ID == "skip" {
			continue // leaves the claim open for the next iteration
		}
		rec.Status.State = JobDone
		_ = st.Put(rec)
	}
}

// claimAndHand delegates the open claim: finish inherits the
// obligation and meets it.
func claimAndHand(st *Store) {
	rec, ok, _ := st.Claim("me", time.Second)
	if !ok {
		return
	}
	finish(st, rec)
}

func finish(st *Store, rec Record) {
	rec.Status.State = JobDone
	_ = st.Put(rec)
}

// claimAndDrop delegates too, but drop abandons the claim on its
// early return — reported inside the delegate.
func claimAndDrop(st *Store) {
	rec, ok, _ := st.Claim("me", time.Second)
	if !ok {
		return
	}
	drop(st, rec)
}

func drop(st *Store, rec Record) {
	if rec.Status.ID == "" {
		return // want `claimed job leaks on this path: no terminal Put, Release, or lease-loss guard`
	}
	rec.Status.State = JobFailed
	_ = st.Put(rec)
}

// renewStray neither claims nor receives a claimed Record: its Renew
// is out of place.
func renewStray(st *Store, id JobID) {
	_ = st.Renew(id, "me", time.Second) // want `Renew outside the claiming goroutine`
}
