// A package outside the deterministic set: the same constructs draw
// no diagnostics here.
package other

import "time"

var counter int

func wall(m map[string]int) time.Time {
	for range m {
		counter++
	}
	return time.Now()
}
