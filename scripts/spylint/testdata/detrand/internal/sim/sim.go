// Fixture for the detrand analyzer: this package's import path puts
// it inside the deterministic set.
package sim

import (
	"math/rand" // want `deterministic package imports math/rand`
	"time"
)

var counter int // want `package-level var counter is mutable state in a deterministic package`

//spylint:allow detrand test hook, proven not to perturb trials
var allowed bool

func wall() time.Duration {
	start := time.Now()      // want `reads the wall clock \(time\.Now\)`
	return time.Since(start) // want `reads the wall clock \(time\.Since\)`
}

func sum(m map[string]int) int {
	s := 0
	for k := range m { // want `range over a map has nondeterministic iteration order`
		s += len(k)
	}
	//spylint:allow detrand order folds through a commutative sum
	for _, v := range m {
		s += v
	}
	return s + rand.Int()
}

func useVars() int {
	if allowed {
		return counter
	}
	return 0
}
