// Fixture for ctxflow in the experiment package: the Params.Ctx
// convention. Kept free of wall-clock reads, package-level state, and
// discarded errors — detrand and droppederr also police this import
// path.
package expt

import "context"

// Params is the option struct; Ctx is the cancellation hook.
type Params struct {
	Trials int
	Ctx    context.Context
}

// ctx resolves the run's context; nil means never cancelled.
func (p Params) ctx() context.Context {
	if p.Ctx != nil {
		return p.Ctx
	}
	//spylint:allow ctxflow fixture: an unset Params.Ctx means the run is never cancelled
	return context.Background()
}

// Run blocks through a context-accepting callee, but Params carries
// the caller's Context: clean.
func Run(p Params) error {
	return wait(p.ctx())
}

func wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Sweep takes no context anywhere and still blocks.
func Sweep(trials int) error { // want `exported API Sweep can block \(calls a context-accepting function\) but takes no context\.Context`
	return wait(context.Background()) // want `context\.Background\(\) in library code detaches this work from caller cancellation; accept and thread a caller ctx instead`
}
