// Fixture for the ctxflow analyzer: exported blocking APIs in the
// library packages must accept a context.Context first (or a params
// struct carrying one) and thread it to blocking callees.
package spybox

import (
	"context"
	"time"
)

// Run can block but offers callers no cancellation.
func Run(ids ...string) error { // want `exported API Run can block \(time\.Sleep\) but takes no context\.Context`
	time.Sleep(time.Millisecond)
	return nil
}

// RunCtx threads its ctx: clean.
func RunCtx(ctx context.Context) error {
	return helper(ctx)
}

func helper(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// Bounded derives a child context, which still counts as threading:
// clean.
func Bounded(ctx context.Context) error {
	child, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	return helper(child)
}

// Detached receives a ctx but hands its callee a different one.
func Detached(ctx, other context.Context) error {
	return helper(other) // want `Detached drops the incoming ctx`
}

// Refresh reaches for a fresh context despite having one; the ban
// fires with the thread-it-through hint (the handoff check stays
// quiet — the ban already points here).
func Refresh(ctx context.Context) error {
	return helper(context.TODO()) // want `context\.TODO\(\) in library code detaches this work from caller cancellation; thread the caller's ctx through instead`
}

// Spawn launches background work detached from every caller.
func Spawn() {
	go func() {
		_ = helper(context.Background()) // want `context\.Background\(\) in library code detaches this work from caller cancellation; accept and thread a caller ctx instead`
	}()
}

// Params carries the ctx for option-struct APIs.
type Params struct {
	Ctx context.Context
}

// RunParams blocks, but the params struct has a Context field: the
// signature rule is satisfied.
func RunParams(p Params) error {
	if p.Ctx != nil {
		return helper(p.Ctx)
	}
	return nil
}

// Nudge polls through a defaulted select, which cannot block: clean.
func Nudge(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// Recv blocks on a bare receive.
func Recv(ch chan int) int { // want `exported API Recv can block \(channel receive\) but takes no context\.Context`
	return <-ch
}

// Watch blocks by design; the exemption documents why.
//
//spylint:allow ctxflow fixture: the watch loop is owned by the caller's goroutine and ends when ch closes
func Watch(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}
