module spybox

go 1.22
