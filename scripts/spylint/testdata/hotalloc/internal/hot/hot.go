// Fixture for the hotalloc analyzer: functions whose doc comments
// carry //spylint:hotpath, plus everything they call intra-module,
// must be allocation-free. Cross-package reach comes from dep's
// exported allocation summary.
package hot

import (
	"fmt"

	"spybox/internal/dep"
)

// Engine's Step closure exercises in-package reachability: helper is
// hot because Step calls it, and findings inside it name Step as the
// root.
type Engine struct {
	buf []int
}

// Step is a hot root: its whole in-package call closure is checked.
//
//spylint:hotpath
func (e *Engine) Step(n int) int {
	x := make([]int, 4)      // want `make allocates on the hot path rooted at Step`
	e.buf = append(e.buf, n) // receiver-owned scratch amortizes: clean
	_ = dep.Format(n)        // want `call to spybox/internal/dep\.Format allocates, on the hot path rooted at Step`
	_ = dep.Scaled(n)        // want `call to spybox/internal/dep\.Scaled allocates, on the hot path rooted at Step`
	_ = dep.Hinted(n)        // dep allowed that site, so its summary is clean
	return dep.Add(e.helper(n), len(x))
}

// helper is hot by reachability from Step, not by annotation.
func (e *Engine) helper(n int) int {
	_ = fmt.Sprintf("%d", n) // want `call to fmt\.Sprintf allocates on the hot path rooted at Step`
	var fresh []int
	fresh = append(fresh, n) // want `append grows a fresh slice every call \(no reused backing array\) on the hot path rooted at Step`
	return len(fresh)
}

// Lits exercises composite-literal sites.
//
//spylint:hotpath
func Lits() int {
	xs := []int{1, 2}     // want `slice literal allocates on the hot path rooted at Lits`
	m := map[string]int{} // want `map literal allocates on the hot path rooted at Lits`
	return len(xs) + len(m)
}

type pair struct{ a, b int }

// Pair escapes a composite literal to the heap.
//
//spylint:hotpath
func Pair(n int) *pair {
	return &pair{a: n} // want `composite literal escapes to the heap \(&T\{\.\.\.\}\) on the hot path rooted at Pair`
}

// Fresh allocates with new.
//
//spylint:hotpath
func Fresh() *int {
	return new(int) // want `new allocates on the hot path rooted at Fresh`
}

// Convert exercises the allocating conversions and concatenation.
//
//spylint:hotpath
func Convert(s string, bs []byte) int {
	b := []byte(s)  // want `conversion to a byte/rune slice allocates on the hot path rooted at Convert`
	t := string(bs) // want `string conversion allocates on the hot path rooted at Convert`
	u := s + t      // want `string concatenation allocates on the hot path rooted at Convert`
	return len(b) + len(u)
}

func sink(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

// Box passes a concrete value to an interface parameter.
//
//spylint:hotpath
func Box(n int) int {
	return sink(n) // want `argument boxes into an interface parameter on the hot path rooted at Box`
}

// Dyn calls through a func value, which cannot be proven clean.
//
//spylint:hotpath
func Dyn(f func() int) int {
	return f() // want `dynamic call on the hot path rooted at Dyn cannot be proven allocation-free`
}

// Closures: capturing literals allocate, capture-free ones do not.
//
//spylint:hotpath
func Closures(n int) {
	_ = func() int { return n } // want `function literal captures variables \(closure allocates\) on the hot path rooted at Closures`
	_ = func() int { return 1 } // captures nothing: clean
}

// Fire starts a goroutine from the hot path.
//
//spylint:hotpath
func Fire(ch chan int) {
	go send(ch) // want `go statement starts a goroutine on the hot path rooted at Fire`
}

func send(ch chan int) { ch <- 1 }

// Guarded shows the two escape hatches: allocations feeding a panic
// are cold by definition, and a cold-but-reachable site carries an
// allow directive.
//
//spylint:hotpath
func Guarded(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad %d", n)) // panic arguments are cold: clean
	}
	scratch := make([]int, n) //spylint:allow hotalloc fixture: grow-only scratch reused across calls
	_ = scratch
}

// cold allocates freely: it is reachable from no hot root.
func cold(n int) []int {
	out := make([]int, n)
	out = append(out, cap(out))
	return out
}
