// Fixture dependency package for the hotalloc analyzer: exports one
// allocating function and one clean one, so the cross-package fact
// propagation (dep is analyzed first, hot consumes its summary) is
// exercised. No //spylint:hotpath roots live here, so nothing in this
// file is reported directly.
package dep

import "fmt"

// Format allocates (fmt call): the package exports that fact.
func Format(n int) string {
	return fmt.Sprintf("%d", n)
}

// Add is allocation-free: hot callers may use it freely.
func Add(a, b int) int {
	return a + b
}

// Scaled allocates only transitively, through Format; the fixpoint
// must still export it as allocating.
func Scaled(n int) string {
	return Format(n * 2)
}

// Hinted would allocate, but the site carries an allow directive, so
// the function's exported summary stays clean and hot callers are not
// blamed.
func Hinted(n int) []int {
	out := make([]int, n) //spylint:allow hotalloc fixture: amortized by the caller's pooling
	return out
}
