// Fixture for the resetcomplete analyzer: pass, fail, and
// suppression cases in one package.
package rc

// Good resets every field: direct assignment, reslicing, clear.
type Good struct {
	a int
	b []int
	m map[string]int
}

func (g *Good) Reset() {
	g.a = 0
	g.b = g.b[:0]
	clear(g.m)
}

// Bad forgets one field.
type Bad struct {
	a    int
	leak int // want `field Bad\.leak is not reset by Reset`
}

func (b *Bad) Reset() { b.a = 0 }

// Exempt carries an allow directive on the uncovered field.
type Exempt struct {
	a int
	//spylint:allow resetcomplete fixed at construction
	cfg int
}

func (e *Exempt) Reset() { e.a = 0 }

// Helper delegates part of the reset to another method on the same
// receiver; the analyzer follows the call.
type Helper struct {
	x int
	y int
	z int // want `field Helper\.z is not reset by Reset`
}

func (h *Helper) Reset() {
	h.x = 0
	h.clearY()
}

func (h *Helper) clearY() { h.y = 0 }

// Seeded has no Reset; Reseed is the RNG spelling of the same contract.
type Seeded struct {
	s     uint64
	spare float64
	leak  int // want `field Seeded\.leak is not reset by Reseed`
}

func (s *Seeded) Reseed(seed uint64) {
	s.s = seed
	s.spare = 0
}

// Whole rewrites the entire struct: every field is covered at once.
type Whole struct {
	a int
	b []int
}

func (w *Whole) Reset() { *w = Whole{} }

// Ranged resets a collection field by mutating each element.
type Ranged struct {
	kids []*Kid
}

func (r *Ranged) Reset() {
	for _, k := range r.kids {
		k.Reset()
	}
}

type Kid struct{ n int }

func (k *Kid) Reset() { k.n = 0 }

// ValRecv's Reset takes a value receiver: it cannot reset anything, so
// the analyzer skips the type entirely rather than reporting noise.
type ValRecv struct{ a int }

func (v ValRecv) Reset() {}

// Addressed hands a field out by address; the callee may reset it.
type Addressed struct {
	buf [4]byte
}

func (a *Addressed) Reset() { fill(&a.buf) }

func fill(b *[4]byte) { *b = [4]byte{} }
