module fixture/resetcomplete

go 1.22
