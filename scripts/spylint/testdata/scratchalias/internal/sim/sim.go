// Fixture stand-in for the simulator's Worker: the method set matches
// the scratchalias seed list, so ProbeLines/ProbeLinesHits here are
// scratch-returning by definition.
package sim

type Worker struct {
	lats []int
	hits []bool
}

// ProbeLines returns worker-owned scratch.
func (w *Worker) ProbeLines(pas []uint64) ([]int, int) {
	return w.lats, len(pas)
}

// ProbeLinesHits returns worker-owned scratch.
func (w *Worker) ProbeLinesHits(pas []uint64) ([]int, []bool, int) {
	return w.lats, w.hits, len(pas)
}
