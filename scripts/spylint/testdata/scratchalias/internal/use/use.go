// Cross-package fixture: capture.Wrap is scratch-returning only via
// the //spylint:scratch fact exported by its package, so a finding
// here proves fact propagation works.
package use

import "spybox/internal/capture"

type Rec struct {
	last []int
}

func (r *Rec) Bad(g *capture.Grabber, pas []uint64) {
	r.last = g.Wrap(pas) // want `storing probe scratch in field last`
}

func (r *Rec) Good(g *capture.Grabber, pas []uint64) {
	r.last = append(r.last[:0], g.Wrap(pas)...)
}
