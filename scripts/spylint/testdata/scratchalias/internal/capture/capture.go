// Fixture for the scratchalias analyzer: every way a probe-scratch
// slice can escape its lifetime window, plus the clean alternatives.
package capture

import "spybox/internal/sim"

type Grabber struct {
	w    *sim.Worker
	keep []int
}

// Wrap passes the worker's scratch through unchanged; the directive
// hands the lifetime obligation to Wrap's own callers (and exports the
// fact other packages check against).
//
//spylint:scratch
func (g *Grabber) Wrap(pas []uint64) []int {
	lats, _ := g.w.ProbeLines(pas)
	return lats
}

func (g *Grabber) BadReturn(pas []uint64) []int {
	lats, _ := g.w.ProbeLines(pas)
	return lats // want `returning probe scratch extends its lifetime`
}

func (g *Grabber) FieldStore(pas []uint64) {
	lats, _ := g.w.ProbeLines(pas)
	g.keep = lats // want `storing probe scratch in field keep`
}

var global []int

func (g *Grabber) GlobalStore(pas []uint64) {
	lats, _ := g.w.ProbeLines(pas)
	global = lats // want `storing probe scratch in package variable global`
}

func (g *Grabber) AppendElem(pas []uint64, hist [][]int) [][]int {
	lats, _ := g.w.ProbeLines(pas)
	return append(hist, lats) // want `appending a probe-scratch slice as an element`
}

func (g *Grabber) Send(pas []uint64, ch chan []int) {
	lats, _ := g.w.ProbeLines(pas)
	ch <- lats // want `sending probe scratch on a channel`
}

func (g *Grabber) Lit(pas []uint64) [][]int {
	lats, _ := g.w.ProbeLines(pas)
	return [][]int{lats} // want `probe scratch captured in a composite literal`
}

// Clone copies the scratch out: append onto a fresh base launders the
// taint, so returning the clone is clean.
func (g *Grabber) Clone(pas []uint64) []int {
	lats, _ := g.w.ProbeLines(pas)
	return append([]int(nil), lats...)
}

// Reslice keeps the alias: slicing scratch is still scratch.
func (g *Grabber) Reslice(pas []uint64) []int {
	lats, _ := g.w.ProbeLines(pas)
	head := lats[:1]
	return head // want `returning probe scratch extends its lifetime`
}

// Spread copies elements out of scratch into a caller-owned slice.
func (g *Grabber) Spread(pas []uint64, dst []int) []int {
	lats, _ := g.w.ProbeLines(pas)
	return append(dst, lats...)
}

// Allowed documents a deliberate retention.
func (g *Grabber) Allowed(pas []uint64) []int {
	lats, _ := g.w.ProbeLines(pas)
	//spylint:allow scratchalias consumed before the next probe by construction
	return lats
}

// Scalar results of a probe are values, not aliases.
func (g *Grabber) Total(pas []uint64) int {
	_, total := g.w.ProbeLines(pas)
	return total
}
