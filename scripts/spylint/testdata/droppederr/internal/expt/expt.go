// Fixture for the droppederr analyzer: this package's import path puts
// it inside the scoped set (experiment bodies).
package expt

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func work() error         { return nil }
func value() (int, error) { return 0, nil }

func bad(f *os.File) {
	work()          // want `error result discarded`
	x, _ := value() // want `error explicitly discarded with _`
	_ = x
	defer f.Close()     // want `deferred call discards its error`
	fmt.Fprintf(f, "x") // want `error result discarded`
}

func good(f *os.File) error {
	var sb strings.Builder
	var buf bytes.Buffer
	fmt.Fprintf(&sb, "x") // infallible writer: exempt
	sb.WriteString("y")   // infallible writer: exempt
	buf.WriteByte('z')    // infallible writer: exempt
	if err := work(); err != nil {
		return err
	}
	//spylint:allow droppederr best-effort cleanup, result already saved
	work()
	n, err := value()
	if err != nil {
		return err
	}
	_ = n // non-error blank: fine
	return f.Close()
}
